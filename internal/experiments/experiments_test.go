package experiments

import (
	"strings"
	"testing"
)

// tiny runs experiments at the smallest scale for test speed.
const tiny = Scale(0.1)

func findRow(t *Table, series, x string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Series == series && (x == "" || r.X == x) {
			return r, true
		}
	}
	return Row{}, false
}

func TestTable2MatchesPaper(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	r, ok := findRow(tb, "Twitter", "")
	if !ok || r.Values["write_pct"] != 97.86 {
		t.Fatalf("Twitter row = %+v", r)
	}
	r, ok = findRow(tb, "TPC-H", "")
	if !ok || r.Values["write_pct"] != 2.27 {
		t.Fatalf("TPC-H row = %+v", r)
	}
}

func TestFig9ShapeRackBloxWins(t *testing.T) {
	tb := Fig9a(tiny)
	// At the write-heavy 20/80 mix RackBlox must beat VDC on P99.9 reads.
	vdc, ok1 := findRow(tb, "VDC", "20/80")
	rb, ok2 := findRow(tb, "RackBlox", "20/80")
	if !ok1 || !ok2 {
		t.Fatalf("rows missing: %v %v", ok1, ok2)
	}
	if rb.Values["value"] >= vdc.Values["value"] {
		t.Errorf("RackBlox P99.9 %.2fms >= VDC %.2fms at 20/80",
			rb.Values["value"], vdc.Values["value"])
	}
	if rb.Values["norm_vs_vdc"] >= 1 {
		t.Errorf("normalized RackBlox = %.2f, want < 1", rb.Values["norm_vs_vdc"])
	}
}

func TestFig12ThroughputPopulated(t *testing.T) {
	tb := Fig12(tiny)
	if len(tb.Rows) != len(mixes)*4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r.Values["kiops"] <= 0 {
			t.Fatalf("zero throughput row %+v", r)
		}
	}
}

func TestFig15StorageLEQTotal(t *testing.T) {
	tb := Fig15a(tiny)
	for _, r := range tb.Rows {
		if r.Values["storage"] > r.Values["total"]+0.001 {
			t.Fatalf("storage %.3f > total %.3f in %s/%s",
				r.Values["storage"], r.Values["total"], r.Series, r.X)
		}
	}
}

func TestFig16CDFMonotone(t *testing.T) {
	tb := Fig16(tiny)
	for _, r := range tb.Rows {
		if !(r.Values["p98.5"] <= r.Values["p99"] &&
			r.Values["p99"] <= r.Values["p99.5"] &&
			r.Values["p99.5"] <= r.Values["p99.9"]) {
			t.Fatalf("non-monotone CDF in %s/%s: %+v", r.Series, r.X, r.Values)
		}
	}
}

func TestFig17CoordinationHelpsEachScheduler(t *testing.T) {
	tb := Fig17(tiny)
	// Every coordinated variant should be no worse than ~1.5x its base
	// (runs are short; exact speedups need full scale).
	for _, base := range []string{"FIFO", "Deadline", "Kyber"} {
		r, ok := findRow(tb, "RackBlox ("+base+")", "50/50")
		if !ok {
			t.Fatalf("missing coordinated row for %s", base)
		}
		if r.Values["speedup_vs_base"] < 0.5 {
			t.Errorf("%s coordination speedup %.2f collapsed", base, r.Values["speedup_vs_base"])
		}
	}
}

func TestFig22SwappingBalances(t *testing.T) {
	tb := Fig22()
	noswap, _ := findRow(tb, "No Swap", "after 2 year(s)")
	swap, _ := findRow(tb, "RackBlox", "after 2 year(s)")
	if swap.Values["imbalance_max"] >= noswap.Values["imbalance_max"] {
		t.Errorf("swap imbalance %.3f >= no-swap %.3f",
			swap.Values["imbalance_max"], noswap.Values["imbalance_max"])
	}
	if swap.Values["imbalance_mean"] > 1.2 {
		t.Errorf("balanced mean imbalance %.3f too high", swap.Values["imbalance_mean"])
	}
}

func TestFig23PeriodsOrdered(t *testing.T) {
	tb := Fig23()
	noswap, _ := findRow(tb, "No Swap", "")
	fast, _ := findRow(tb, "RB-Swap per 4 Weeks", "")
	if fast.Values["week80"] >= noswap.Values["week80"] {
		t.Errorf("4-week swapping %.3f >= no swap %.3f at week 80",
			fast.Values["week80"], noswap.Values["week80"])
	}
}

func TestPredictorAccuracyTable(t *testing.T) {
	tb := PredictorAccuracy()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r.Values["hit_rate"] < 0.5 {
			t.Errorf("%s hit rate %.3f too low", r.Series, r.Values["hit_rate"])
		}
	}
}

func TestByIDAll(t *testing.T) {
	// Every listed id must resolve; run the cheap ones.
	for _, id := range All() {
		switch id {
		case "table2", "fig22", "fig23", "predictor":
			tables, err := ByID(id, tiny)
			if err != nil || len(tables) == 0 {
				t.Errorf("ByID(%q) = %v", id, err)
			}
		}
	}
	if _, err := ByID("nope", tiny); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableFormat(t *testing.T) {
	tb := Table2()
	s := tb.Format()
	if !strings.Contains(s, "Table2") || !strings.Contains(s, "Twitter") {
		t.Fatalf("format output missing content:\n%s", s)
	}
}

func TestScaleDuration(t *testing.T) {
	if Scale(0).duration(1000) < 1 {
		t.Fatal("zero scale must fall back to full")
	}
	if d := Scale(0.5).duration(1_000_000_000); d != 500_000_000 {
		t.Fatalf("scaled duration = %d", d)
	}
	// Floors at 100ms.
	if d := Scale(0.001).duration(1_000_000_000); d != 100_000_000 {
		t.Fatalf("floored duration = %d", d)
	}
}

func TestGCAblation(t *testing.T) {
	tb := GCAblation(Scale(0.4))
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r.Values["value"] <= 0 {
			t.Errorf("%s has zero latency", r.Series)
		}
		if r.Values["gc_events"] <= 0 {
			t.Errorf("%s ran no GC", r.Series)
		}
	}
}

func TestFigECComparesBackends(t *testing.T) {
	tb := FigEC(tiny)
	if len(tb.Rows) != 6 { // 3 scenarios x 2 redundancy schemes
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	for _, series := range []string{"2-replication", "RS(4,2)"} {
		for _, x := range []string{"YCSB 50/50", "GC storm (Twitter)", "YCSB + 2 crashes"} {
			r, ok := findRow(tb, series, x)
			if !ok {
				t.Fatalf("missing row %s / %s", series, x)
			}
			if r.Values["p999_ms"] <= 0 || r.Values["kiops"] <= 0 {
				t.Errorf("%s / %s: empty metrics %+v", series, x, r.Values)
			}
		}
	}
	// The crash scenario must show EC serving reads degraded, losing none.
	r, _ := findRow(tb, "RS(4,2)", "YCSB + 2 crashes")
	if r.Values["degraded"] <= 0 {
		t.Errorf("EC crash scenario recorded no degraded reads: %+v", r.Values)
	}
	if r.Values["lost_reads"] != 0 {
		t.Errorf("EC crash scenario lost %v reads", r.Values["lost_reads"])
	}
	if _, err := ByID("figec", tiny); err != nil {
		t.Fatalf("ByID(figec): %v", err)
	}
}
