package experiments

import "testing"

// TestFigRARackAwareCodesCutRepairTraffic pins the rack-aware coding
// experiment's acceptance criteria at equal-or-better durability than
// RS(4,2): a single-server loss repairs under LRC with zero cross-rack
// bytes (every stripe via the rack-local XOR plan); a whole-rack loss
// ships fewer than k chunks of spine bytes per repaired stripe under
// aggregated repair — and strictly fewer than RS ships; and repair
// completes sooner than RS under the same RepairSLO on the scarce
// spine. No scenario exceeds either family's durability.
func TestFigRARackAwareCodesCutRepairTraffic(t *testing.T) {
	tb := FigRA(1.0, Options{})
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	get := func(series, x string) Row {
		r, ok := findRow(tb, series, x)
		if !ok {
			t.Fatalf("missing row %s/%s", series, x)
		}
		return r
	}
	rsServer := get("RS(4,2)", "server 0 crash")
	rsRack := get("RS(4,2)", "rack 0 crash")
	lrcServer := get("LRC(4,2)", "server 0 crash")
	lrcRack := get("LRC(4,2)", "rack 0 crash")

	// Durability floor: neither scenario loses a stripe in either family.
	for _, r := range tb.Rows {
		if r.Values["unrecov_stripes"] != 0 {
			t.Errorf("%s/%s: %v unrecoverable stripes at supposedly fixed durability",
				r.Series, r.X, r.Values["unrecov_stripes"])
		}
		if r.Values["pending"] != 0 {
			t.Errorf("%s/%s: %v repair tasks never drained", r.Series, r.X, r.Values["pending"])
		}
		if r.Values["repaired"] <= 0 {
			t.Errorf("%s/%s: no stripes repaired", r.Series, r.X)
		}
	}

	// Headline 1: the single-server loss never touches the spine under
	// LRC — every stripe rebuilds via the rack-local XOR plan — while RS
	// must fetch most of its k sources across racks.
	if lrcServer.Values["cross_repair_mb"] != 0 {
		t.Errorf("LRC single-server repair moved %.3f MB over the spine; the local plan moves none",
			lrcServer.Values["cross_repair_mb"])
	}
	if lrcServer.Values["local_repair"] < lrcServer.Values["repaired"] {
		t.Errorf("only %v of %v stripes repaired locally under a single-server loss",
			lrcServer.Values["local_repair"], lrcServer.Values["repaired"])
	}
	if lrcServer.Values["local_degraded"] <= 0 {
		t.Error("no degraded reads served by the rack-local plan")
	}
	if rsServer.Values["cross_repair_mb"] <= 0 {
		t.Error("RS single-server repair moved no spine bytes; the comparison scenario is dead")
	}

	// Headline 2: aggregated multi-loss repair ships fewer than k chunks
	// of spine bytes per repaired stripe, and strictly fewer than RS.
	k := 4.0
	if c := lrcRack.Values["cross_chunks_per_stripe"]; c <= 0 || c >= k {
		t.Errorf("LRC rack-crash repair shipped %.3f chunks per stripe, want in (0, k=%v)", c, k)
	}
	if lrcRack.Values["cross_chunks_per_stripe"] >= rsRack.Values["cross_chunks_per_stripe"] {
		t.Errorf("aggregated repair shipped %.3f chunks per stripe, not below RS's %.3f",
			lrcRack.Values["cross_chunks_per_stripe"], rsRack.Values["cross_chunks_per_stripe"])
	}
	if lrcRack.Values["agg_repair"] <= 0 {
		t.Error("no stripes repaired via the aggregated plan with the whole rack down")
	}

	// Headline 3: cheaper repair drains sooner under the same SLO.
	for _, pair := range [][2]Row{{lrcServer, rsServer}, {lrcRack, rsRack}} {
		if pair[0].Values["repair_done_ms"] >= pair[1].Values["repair_done_ms"] {
			t.Errorf("%s: LRC repair finished at %.3fms, not before RS's %.3fms",
				pair[0].X, pair[0].Values["repair_done_ms"], pair[1].Values["repair_done_ms"])
		}
		if pair[0].Values["slo_target_ms"] != pair[1].Values["slo_target_ms"] {
			t.Errorf("%s: families ran under different SLO targets (%.3f vs %.3f ms)",
				pair[0].X, pair[0].Values["slo_target_ms"], pair[1].Values["slo_target_ms"])
		}
	}

	if _, err := ByID("figra", tiny); err != nil {
		t.Fatalf("ByID(figra): %v", err)
	}
}
