package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"rackblox/internal/core"
	"rackblox/internal/sim"
	"rackblox/internal/trace"
)

// sloCycleConfig is the figslo paced run's configuration: the
// repeated-fault timeline on the scarce spine with the repair pacer on —
// the densest mix of datapath, GC, repair, and control-plane activity
// the flight recorder instruments.
func sloCycleConfig() core.Config {
	cfg := sloConfig(tiny, Options{})
	cfg.Scenario = []core.Event{
		core.FailServer(0, scFailAt),
		core.ReviveServer(0, scReviveAt),
		core.FailServer(0, scFail2At),
	}
	cfg.RepairSLO = core.RepairSLO{TargetP99: 20 * sim.Millisecond}
	return cfg
}

// TestObservabilityIsObserverOnly is the flight recorder's hard
// contract: enabling tracing and metrics must not perturb the simulated
// outcome. A traced+metered figslo-cycle run must be byte-identical to
// the plain run in everything except the recorder's own output fields.
func TestObservabilityIsObserverOnly(t *testing.T) {
	off, err := core.Run(sloCycleConfig())
	if err != nil {
		t.Fatal(err)
	}

	traced := sloCycleConfig()
	traced.Trace = trace.Options{Enabled: true, SampleEvery: 4}
	traced.MetricsInterval = sim.Millisecond
	on, err := core.Run(traced)
	if err != nil {
		t.Fatal(err)
	}

	// The recorder actually recorded.
	if on.Trace == nil || on.Trace.TotalReads == 0 || len(on.Trace.Spans) == 0 {
		t.Fatal("traced run kept no spans")
	}
	if len(on.Trace.Instants) == 0 {
		t.Fatal("traced run recorded no control-plane instants")
	}
	if on.Timelines == nil || on.Timelines.Len() == 0 {
		t.Fatal("metered run sampled no timeline points")
	}
	sum := 0.0
	for _, s := range on.TailAttribution {
		sum += s.Fraction
	}
	if math.Abs(sum-1) > 0.02 {
		t.Fatalf("tail attribution fractions sum to %g, want ~1 (%+v)", sum, on.TailAttribution)
	}

	// Strip the recorder's own output and config knobs; everything that
	// remains must be byte-identical.
	if off.Events != on.Events {
		t.Fatalf("event counts differ: off %d, on %d — observation perturbed the run", off.Events, on.Events)
	}
	if off.Recorder.Reads().P99() != on.Recorder.Reads().P99() {
		t.Fatalf("read p99 differs: off %d, on %d", off.Recorder.Reads().P99(), on.Recorder.Reads().P99())
	}
	on.Trace, on.Timelines, on.TailAttribution = nil, nil, nil
	on.Config.Trace = trace.Options{}
	on.Config.MetricsInterval = 0
	a, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(on)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("traced run's Result differs from plain run's\noff: %.400s\non:  %.400s", a, b)
	}
}

// TestTracedRunsProduceIdenticalArtifacts replays the traced run and
// asserts the exported artifacts — the Chrome trace JSON and the metrics
// CSV — are byte-identical across replays, so a flight recording is as
// reproducible as the simulation it observes.
func TestTracedRunsProduceIdenticalArtifacts(t *testing.T) {
	runOnce := func() *core.Result {
		cfg := sloCycleConfig()
		cfg.Trace = trace.Options{Enabled: true, SampleEvery: 4}
		cfg.MetricsInterval = sim.Millisecond
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := runOnce(), runOnce()

	var t1, t2 bytes.Buffer
	if err := first.Trace.WriteChromeTrace(&t1); err != nil {
		t.Fatal(err)
	}
	if err := second.Trace.WriteChromeTrace(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("two traced replays produced different trace files")
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(t1.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}

	var c1, c2 bytes.Buffer
	if err := first.Timelines.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := second.Timelines.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("two metered replays produced different metrics CSVs")
	}
}
