package flash

import (
	"errors"
	"testing"
	"testing/quick"
)

func tinyGeo() Geometry {
	return Geometry{Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 4, PagesPerBlock: 8, PageSize: 4096}
}

func TestGeometryCounts(t *testing.T) {
	g := tinyGeo()
	if g.TotalChips() != 4 {
		t.Fatalf("chips = %d, want 4", g.TotalChips())
	}
	if g.TotalBlocks() != 16 {
		t.Fatalf("blocks = %d, want 16", g.TotalBlocks())
	}
	if g.TotalPages() != 128 {
		t.Fatalf("pages = %d, want 128", g.TotalPages())
	}
	if g.Capacity() != 128*4096 {
		t.Fatalf("capacity = %d", g.Capacity())
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := tinyGeo()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
}

func TestPPNRoundTripProperty(t *testing.T) {
	g := DefaultGeometry()
	f := func(ch, chip, blk, pg uint8) bool {
		a := Addr{
			Channel: int(ch) % g.Channels,
			Chip:    int(chip) % g.ChipsPerChannel,
			Block:   int(blk) % g.BlocksPerChip,
			Page:    int(pg) % g.PagesPerBlock,
		}
		return g.AddrOf(g.PPN(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPNDense(t *testing.T) {
	g := tinyGeo()
	seen := make([]bool, g.TotalPages())
	for ch := 0; ch < g.Channels; ch++ {
		for c := 0; c < g.ChipsPerChannel; c++ {
			for b := 0; b < g.BlocksPerChip; b++ {
				for p := 0; p < g.PagesPerBlock; p++ {
					n := g.PPN(Addr{ch, c, b, p})
					if n < 0 || n >= len(seen) || seen[n] {
						t.Fatalf("PPN not a bijection at %v -> %d", Addr{ch, c, b, p}, n)
					}
					seen[n] = true
				}
			}
		}
	}
}

func TestProfiles(t *testing.T) {
	o, i, p := ProfileOptane(), ProfileIntelDC(), ProfilePSSD()
	if !(o.ReadPage < i.ReadPage && i.ReadPage < p.ReadPage) {
		t.Fatal("profile read latency ordering broken (Optane < IntelDC < P-SSD)")
	}
	if !(o.ProgramPage < i.ProgramPage && i.ProgramPage < p.ProgramPage) {
		t.Fatal("profile program latency ordering broken")
	}
	for _, name := range []string{"Optane", "IntelDC", "P-SSD"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	if _, err := ProfileByName("floppy"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func newTestArray(t *testing.T) *Array {
	t.Helper()
	a, err := NewArray(tinyGeo(), ProfilePSSD())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestProgramSequential(t *testing.T) {
	a := newTestArray(t)
	addr := Addr{Channel: 0, Chip: 0, Block: 0}
	for want := 0; want < a.Geo.PagesPerBlock; want++ {
		p, err := a.Program(addr)
		if err != nil {
			t.Fatalf("program %d: %v", want, err)
		}
		if p != want {
			t.Fatalf("program returned page %d, want %d", p, want)
		}
	}
	if _, err := a.Program(addr); !errors.Is(err, ErrBlockFull) {
		t.Fatalf("overfull program err = %v, want ErrBlockFull", err)
	}
	if b := a.BlockAt(addr); b.Valid != a.Geo.PagesPerBlock {
		t.Fatalf("valid = %d, want %d", b.Valid, a.Geo.PagesPerBlock)
	}
}

func TestInvalidate(t *testing.T) {
	a := newTestArray(t)
	addr := Addr{Block: 1}
	p, _ := a.Program(addr)
	addr.Page = p
	if err := a.Invalidate(addr); err != nil {
		t.Fatalf("invalidate: %v", err)
	}
	if a.BlockAt(addr).Valid != 0 {
		t.Fatal("valid count not decremented")
	}
	if err := a.Invalidate(addr); err == nil {
		t.Fatal("double invalidate accepted")
	}
	if err := a.Invalidate(Addr{Block: 1, Page: 999}); err == nil {
		t.Fatal("out-of-range page accepted")
	}
}

func TestEraseResetsBlock(t *testing.T) {
	a := newTestArray(t)
	addr := Addr{Block: 2}
	for i := 0; i < 4; i++ {
		a.Program(addr)
	}
	if err := a.Erase(addr); err != nil {
		t.Fatalf("erase: %v", err)
	}
	b := a.BlockAt(addr)
	if b.WritePtr != 0 || b.Valid != 0 || b.EraseCount != 1 {
		t.Fatalf("block after erase = %+v", b)
	}
	for _, s := range b.State {
		if s != PageFree {
			t.Fatal("page not freed by erase")
		}
	}
	if a.Erases() != 1 {
		t.Fatalf("array erases = %d, want 1", a.Erases())
	}
}

func TestEnduranceRetiresBlock(t *testing.T) {
	geo := tinyGeo()
	prof := ProfilePSSD()
	prof.Endurance = 3
	a, err := NewArray(geo, prof)
	if err != nil {
		t.Fatal(err)
	}
	addr := Addr{}
	for i := 0; i < 2; i++ {
		if err := a.Erase(addr); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	if err := a.Erase(addr); !errors.Is(err, ErrWornOut) {
		t.Fatalf("third erase err = %v, want ErrWornOut", err)
	}
	if !a.BlockAt(addr).Bad {
		t.Fatal("block not marked bad at endurance")
	}
	if _, err := a.Program(addr); !errors.Is(err, ErrWornOut) {
		t.Fatal("program on bad block accepted")
	}
	if err := a.Erase(addr); !errors.Is(err, ErrWornOut) {
		t.Fatal("erase on bad block accepted")
	}
}

func TestWearAccounting(t *testing.T) {
	a := newTestArray(t)
	if a.AvgEraseCount() != 0 || a.MaxEraseCount() != 0 {
		t.Fatal("fresh array has wear")
	}
	a.Erase(Addr{Block: 0})
	a.Erase(Addr{Block: 0})
	a.Erase(Addr{Block: 1})
	if a.MaxEraseCount() != 2 {
		t.Fatalf("max erase = %d, want 2", a.MaxEraseCount())
	}
	want := 3.0 / float64(a.Geo.TotalBlocks())
	if got := a.AvgEraseCount(); got != want {
		t.Fatalf("avg erase = %f, want %f", got, want)
	}
}

func TestProgramsCounter(t *testing.T) {
	a := newTestArray(t)
	a.Program(Addr{})
	a.Program(Addr{})
	a.Program(Addr{Block: 1})
	if a.Programs() != 3 {
		t.Fatalf("programs = %d, want 3", a.Programs())
	}
}

// Property: valid-page count per block always equals programs minus
// invalidations and is bounded by pages-per-block.
func TestValidCountInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a, err := NewArray(tinyGeo(), ProfilePSSD())
		if err != nil {
			return false
		}
		addr := Addr{}
		var valids []int // pages currently valid
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // program
				if p, err := a.Program(addr); err == nil {
					valids = append(valids, p)
				}
			case 2: // invalidate one valid page
				if len(valids) > 0 {
					pg := valids[len(valids)-1]
					valids = valids[:len(valids)-1]
					if a.Invalidate(Addr{Page: pg}) != nil {
						return false
					}
				}
			}
			b := a.BlockAt(addr)
			if b.Valid != len(valids) || b.Valid > a.Geo.PagesPerBlock {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPageStateString(t *testing.T) {
	if PageFree.String() != "free" || PageValid.String() != "valid" || PageInvalid.String() != "invalid" {
		t.Fatal("state strings wrong")
	}
	if PageState(9).String() == "" {
		t.Fatal("unknown state has empty string")
	}
}
