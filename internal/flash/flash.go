// Package flash models NAND flash geometry and timing: packages, chips,
// blocks and pages, with per-block erase counts and device latency
// profiles. It is the lowest substrate of the SSD simulator; the FTL and
// garbage collection live one level up in internal/ssd.
package flash

import (
	"errors"
	"fmt"
)

// PageState tracks the lifecycle of one flash page.
type PageState uint8

const (
	// PageFree is an erased page ready to be programmed.
	PageFree PageState = iota
	// PageValid holds live data.
	PageValid
	// PageInvalid holds stale data awaiting garbage collection.
	PageInvalid
)

func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// Geometry describes the physical layout of one SSD.
type Geometry struct {
	// Channels is the number of independent flash channels.
	Channels int
	// ChipsPerChannel is the number of flash chips sharing one channel.
	ChipsPerChannel int
	// BlocksPerChip is the number of erase blocks in one chip.
	BlocksPerChip int
	// PagesPerBlock is the number of programmable pages in one block.
	PagesPerBlock int
	// PageSize is the page payload in bytes (4 KiB typical).
	PageSize int
}

// DefaultGeometry is a small but structurally faithful SSD used by the
// experiments: GC frequency matters, raw capacity does not.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:        8,
		ChipsPerChannel: 4,
		BlocksPerChip:   64,
		PagesPerBlock:   64,
		PageSize:        4096,
	}
}

// Validate reports whether every dimension is positive.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.ChipsPerChannel <= 0 || g.BlocksPerChip <= 0 ||
		g.PagesPerBlock <= 0 || g.PageSize <= 0 {
		return fmt.Errorf("flash: invalid geometry %+v", g)
	}
	return nil
}

// TotalChips returns the chip count.
func (g Geometry) TotalChips() int { return g.Channels * g.ChipsPerChannel }

// TotalBlocks returns the block count.
func (g Geometry) TotalBlocks() int { return g.TotalChips() * g.BlocksPerChip }

// TotalPages returns the page count.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock }

// Capacity returns the raw byte capacity.
func (g Geometry) Capacity() int64 {
	return int64(g.TotalPages()) * int64(g.PageSize)
}

// Profile holds the timing of one device class. All values are virtual
// nanoseconds. The three profiles mirror §4.5.3 of the paper.
type Profile struct {
	Name string
	// ReadPage is the latency of one page read.
	ReadPage int64
	// ProgramPage is the latency of one page program.
	ProgramPage int64
	// EraseBlock is the latency of one block erase.
	EraseBlock int64
	// Endurance is the number of erases a block tolerates before wearing out.
	Endurance int
}

// Device profiles from fastest to slowest (§4.5.3): Intel Optane,
// Intel DC NVMe, and the programmable SSD used for the main evaluation.
func ProfileOptane() Profile {
	return Profile{Name: "Optane", ReadPage: 10_000, ProgramPage: 15_000, EraseBlock: 150_000, Endurance: 60_000}
}

func ProfileIntelDC() Profile {
	return Profile{Name: "IntelDC", ReadPage: 80_000, ProgramPage: 220_000, EraseBlock: 3_000_000, Endurance: 30_000}
}

func ProfilePSSD() Profile {
	return Profile{Name: "P-SSD", ReadPage: 95_000, ProgramPage: 350_000, EraseBlock: 5_000_000, Endurance: 30_000}
}

// ProfileByName resolves a profile by its display name.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "Optane":
		return ProfileOptane(), nil
	case "IntelDC":
		return ProfileIntelDC(), nil
	case "P-SSD", "PSSD":
		return ProfilePSSD(), nil
	}
	return Profile{}, fmt.Errorf("flash: unknown profile %q", name)
}

// Addr identifies a physical page.
type Addr struct {
	Channel int
	Chip    int
	Block   int
	Page    int
}

// PPN flattens an address into a physical page number.
func (g Geometry) PPN(a Addr) int {
	return ((a.Channel*g.ChipsPerChannel+a.Chip)*g.BlocksPerChip+a.Block)*g.PagesPerBlock + a.Page
}

// AddrOf inverts PPN.
func (g Geometry) AddrOf(ppn int) Addr {
	p := ppn % g.PagesPerBlock
	ppn /= g.PagesPerBlock
	b := ppn % g.BlocksPerChip
	ppn /= g.BlocksPerChip
	c := ppn % g.ChipsPerChannel
	ch := ppn / g.ChipsPerChannel
	return Addr{Channel: ch, Chip: c, Block: b, Page: p}
}

// Block is one erase block: page states plus wear accounting.
type Block struct {
	// State holds the per-page lifecycle.
	State []PageState
	// WritePtr is the next free page index; pages program sequentially.
	WritePtr int
	// Valid counts pages in PageValid.
	Valid int
	// EraseCount is the block's total erases to date (wear).
	EraseCount int
	// Bad marks the block as retired (bad-block management).
	Bad bool
}

// ErrWornOut is returned when programming or erasing a retired block.
var ErrWornOut = errors.New("flash: block is marked bad")

// ErrBlockFull is returned when programming past the last page.
var ErrBlockFull = errors.New("flash: block has no free pages")

// ErrNotErased is returned when programming a non-free page.
var ErrNotErased = errors.New("flash: page is not erased")

// Chip is an independently addressable flash die.
type Chip struct {
	Blocks []Block
}

// Array is the full flash array of one SSD.
type Array struct {
	Geo     Geometry
	Profile Profile
	Chips   []Chip
	// erases counts total erase operations for wear statistics.
	erases int64
	// programs counts total page programs (physical write amplification
	// numerator).
	programs int64
}

// NewArray builds an erased array.
func NewArray(geo Geometry, prof Profile) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	a := &Array{Geo: geo, Profile: prof}
	a.Chips = make([]Chip, geo.TotalChips())
	for i := range a.Chips {
		blocks := make([]Block, geo.BlocksPerChip)
		for b := range blocks {
			blocks[b].State = make([]PageState, geo.PagesPerBlock)
		}
		a.Chips[i].Blocks = blocks
	}
	return a, nil
}

// chipIndex maps (channel, chip) to the flat chip slice.
func (a *Array) chipIndex(channel, chip int) int {
	return channel*a.Geo.ChipsPerChannel + chip
}

// BlockAt returns the block at the address (page index ignored).
func (a *Array) BlockAt(addr Addr) *Block {
	return &a.Chips[a.chipIndex(addr.Channel, addr.Chip)].Blocks[addr.Block]
}

// Program marks the next free page of the block valid and returns its page
// index. The flash array tracks state only; timing is the caller's job.
func (a *Array) Program(addr Addr) (page int, err error) {
	b := a.BlockAt(addr)
	if b.Bad {
		return 0, ErrWornOut
	}
	if b.WritePtr >= a.Geo.PagesPerBlock {
		return 0, ErrBlockFull
	}
	p := b.WritePtr
	if b.State[p] != PageFree {
		return 0, ErrNotErased
	}
	b.State[p] = PageValid
	b.WritePtr++
	b.Valid++
	a.programs++
	return p, nil
}

// Invalidate marks a previously valid page stale.
func (a *Array) Invalidate(addr Addr) error {
	b := a.BlockAt(addr)
	if addr.Page < 0 || addr.Page >= a.Geo.PagesPerBlock {
		return fmt.Errorf("flash: page %d out of range", addr.Page)
	}
	if b.State[addr.Page] != PageValid {
		return fmt.Errorf("flash: invalidate non-valid page %v (%s)", addr, b.State[addr.Page])
	}
	b.State[addr.Page] = PageInvalid
	b.Valid--
	return nil
}

// Erase resets every page of the block to free and bumps wear. A block
// that exceeds its endurance is marked bad and ErrWornOut is returned.
func (a *Array) Erase(addr Addr) error {
	b := a.BlockAt(addr)
	if b.Bad {
		return ErrWornOut
	}
	for i := range b.State {
		b.State[i] = PageFree
	}
	b.WritePtr = 0
	b.Valid = 0
	b.EraseCount++
	a.erases++
	if a.Profile.Endurance > 0 && b.EraseCount >= a.Profile.Endurance {
		b.Bad = true
		return ErrWornOut
	}
	return nil
}

// Erases returns the total erase operations performed on the array.
func (a *Array) Erases() int64 { return a.erases }

// Programs returns the total page programs performed on the array.
func (a *Array) Programs() int64 { return a.programs }

// AvgEraseCount returns the mean per-block erase count, the paper's wear
// metric φ (§3.6).
func (a *Array) AvgEraseCount() float64 {
	total := 0
	n := 0
	for i := range a.Chips {
		for b := range a.Chips[i].Blocks {
			total += a.Chips[i].Blocks[b].EraseCount
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// MaxEraseCount returns the largest per-block erase count.
func (a *Array) MaxEraseCount() int {
	max := 0
	for i := range a.Chips {
		for b := range a.Chips[i].Blocks {
			if c := a.Chips[i].Blocks[b].EraseCount; c > max {
				max = c
			}
		}
	}
	return max
}
