// Package rackblox is a simulation-backed reproduction of RackBlox, the
// software-defined rack-scale storage system with network-storage
// co-design from SOSP 2023.
//
// The library simulates a full rack — clients, a programmable ToR switch,
// storage servers with open-channel SSDs, and replicated virtual SSDs —
// and implements the paper's three mechanisms on top:
//
//   - coordinated I/O scheduling: the switch measures network latency with
//     in-band telemetry and the storage scheduler orders requests by
//     end-to-end urgency (Net_time + Storage_time + Predict_time);
//   - coordinated garbage collection: the switch tracks per-vSSD GC state,
//     redirects reads to the idle replica, delays soft GC requests while
//     the replica collects, and lets devices run background GC in idle
//     windows;
//   - rack-scale wear leveling: a two-level balancer equalizes SSD wear
//     inside each server and across the rack.
//
// Beyond the paper, the rack supports three redundancy backends
// selected by Config.Redundancy: the paper's 2-way Hermes replication
// (RedundancyReplication, the default), rack-aware RS(k,m) erasure
// coding (RedundancyEC), and its repair-efficient local-parity variant
// (RedundancyLRC, below). Under erasure coding every volume is striped
// over k data + m parity chunk holders on distinct servers; the ToR
// switch steers reads for a collecting or failed chunk holder to a
// survivor, which reconstructs from any k chunks (a degraded read), and
// a background reconstructor repairs lost chunks only in switch-observed
// GC idle windows. The replication-vs-EC comparison is Experiment
// ("figec", ...), and the RS codec itself is exported as ECCodec.
//
// # Multi-rack clusters
//
// Setting Config.Racks > 1 composes that many rack fault domains under a
// simulated spine/aggregation link (the Cluster topology layer): every
// rack gets its own ToR switch, cross-rack packets pay
// Config.CrossRackLatency, and bulk repair traffic is metered on a
// shared link of Config.CrossRackMBps — transfers serialize, so repair
// throughput can never exceed the configured cross-rack bandwidth, which
// Result.CrossRackRepairBytes and Result.SpineUtilization expose as
// first-class measurements. Config.Placement then chooses how
// erasure-coded stripes map onto the fault domains: PlacementCompact
// confines each stripe group to one rack (the original layout), while
// PlacementSpread distributes every stripe across racks with at most m
// chunks per rack, so a whole-rack or ToR failure leaves every stripe
// recoverable. Degraded reads and chunk repair select sources
// rack-local-first and spill onto the metered spine only when a rack
// cannot supply k survivors; reads whose entire home rack is dark are
// handed between ToR switches (per-rack stripe tables with inter-switch
// handoff). Failures inject at three scopes: Config.FailServers
// (validated against duplicates and out-of-range indices with a typed
// *core.FailureSpecError), Config.FailRackIndex (a whole-rack crash),
// and Config.FailToRIndex (a dark switch: servers alive, rack
// unreachable, no data lost). The compact-vs-spread comparison under
// rack failure is Experiment("figmr", ...), also reachable as
// rackbench -exp figmr with -racks and -crossbw flags.
//
// # Recovery lifecycle
//
// The cluster heals all the way back, not just survives. When the
// background reconstructor finishes rebuilding a lost holder's chunks
// onto its adopting member, the adopter is re-registered as the
// holder's replacement in every involved ToR's stripe table
// (switchsim.ReplaceStripeMember): the failover and remote-dead entries
// are cleared and traffic still addressed to the dead id is rewritten
// and served directly, so post-repair reads stop paying the degraded
// k-fetch reconstruction cost. Result.ReintegratedStripes counts the
// re-registered stripes and Result.DegradedReadsPostRepair — zero when
// the loop closes correctly — counts stragglers that still degraded
// afterwards. A failed ToR can likewise be revived: the switch returns
// with blank SRAM, the control plane replays its tables from surviving
// state, and sibling ToRs drop the remote-dead marks and failover
// rewrites they held for the rack. Foreground (non-repair) cross-rack
// traffic — client requests, responses, handoffs, replication messages
// — is metered on the same spine link as repair transfers, so the two
// classes contend for bandwidth realistically;
// Result.ForegroundCrossRackBytes reports it separately from
// Result.CrossRackRepairBytes. The fail -> repair -> re-integrate ->
// revive timeline is Experiment("figrl", ...), also reachable as
// rackbench -exp figrl, which shows degraded-read latency returning to
// the healthy baseline after re-integration.
//
// # Scenario timelines
//
// Failure injection is a typed, ordered event schedule: Config.Scenario
// is a slice of Events — FailServer, FailRack, FailToR, ReviveServer,
// ReviveToR — each carrying its own instant, validated as a whole
// (ordering, index ranges, no double-crash of a down server,
// revive-before-fail rejected, same-instant rack+ToR double-booking
// rejected) with typed *FailureSpecError rejections, and executed by
// the cluster's event driver:
//
//	cfg := rackblox.DefaultConfig()
//	cfg.Scenario = []rackblox.Event{
//		rackblox.FailServer(0, 120_000_000),   // crash at 120ms
//		rackblox.ReviveServer(0, 300_000_000), // return blank at 300ms
//		rackblox.FailServer(0, 650_000_000),   // crash again at 650ms
//	}
//
// Timelines express what the deprecated flat fields (FailServerIndex,
// FailServers, FailRackIndex, FailToRIndex, RecoverToRIndex — all
// sharing the single FailServerAt/RecoverToRAt instant) never could:
// independent event times, repeated fail/heal cycles, and server
// revival. A revived server returns with blank DRAM and flash, so the
// recovery is earned: every erasure-coded chunk holder it hosted is
// rebuilt from scratch by the metered reconstructor (catch-up repair,
// contending for the same spine bandwidth as any other repair) and
// re-registered under its original id when the last chunk lands
// (switchsim.RestoreStripeMember); under replication the survivor
// re-admits the returned peer to its Hermes group (AddPeer), restoring
// the full write quorum. Result.ServerRevivals and
// Result.RestoredHolders count the lifecycle. The flat fields remain as
// deprecated shims that compile down to an equivalent timeline through
// the same validator and driver, so legacy configs produce byte-
// identical results; migrate by replacing, e.g.,
//
//	cfg.FailServerIndex = 3            // deprecated
//	cfg.FailServerAt = 250 * ms        //
//
// with
//
//	cfg.Scenario = []rackblox.Event{rackblox.FailServer(3, 250*ms)}
//
// The fail -> revive -> catch-up -> fail-again cycle is
// Experiment("figsc", ...), also reachable as rackbench -exp figsc, and
// rackbench -scenario "failrack:0@300ms,revive-server:2@600ms" runs a
// one-off custom timeline.
//
// # SLO-aware repair pacing
//
// Repair traffic and foreground traffic contend for the same spine, so
// on a scarce link an unpaced reconstruction blows up the foreground
// read tail for as long as it runs. Config.RepairSLO closes this last
// co-design loop with feedback control:
//
//	cfg.RepairSLO = rackblox.RepairSLO{
//		TargetP99:   5_000_000, // defend a 5ms foreground read p99
//		MinRateMBps: 1,         // repair never starves
//		MaxRateMBps: 80,        // may use the whole spine when latency permits
//	}
//
// A windowed quantile sensor (stats.WindowedQuantile) observes every
// completed foreground read; each controller tick compares the windowed
// p99 against TargetP99 and adjusts the repair admission rate with AIMD
// — additive probing while the tail is under target, multiplicative
// backoff (and a fresh evidence window) the moment it is not — always
// within [MinRateMBps, MaxRateMBps]. The rate is enforced by a
// token-bucket lane layered on the spine (sim.PacedBandwidth):
// foreground transfers keep FIFO access to the link, repair batches
// wait for tokens that refill at the controller's rate, and enqueued
// batches are split to token-sized transfers so a single batch cannot
// monopolize the link. The MinRateMBps floor is the no-starvation
// guarantee: repair always completes, just slower while the SLO is
// tight. Result reports the trade-off: RepairCompletionTime (when the
// last batch landed), SLOViolationFraction (fraction of controller
// ticks whose windowed p99 exceeded target), and RepairRateTimeline
// (every rate the controller set). Spine byte counters come in
// delivered/offered pairs (CrossRackRepairBytes vs
// CrossRackRepairBytesOffered, ForegroundCrossRackBytes vs
// ForegroundCrossRackBytesOffered): delivered counts only transfers
// whose last byte cleared the link, offered counts at enqueue, and the
// two reconcile exactly once a run drains. The pacing-off vs pacing-on
// comparison on the figsc repeated-fault timeline is
// Experiment("figslo", ...), also reachable as rackbench -exp figslo
// (with -repair-slo overriding the auto-derived target); see
// examples/slo.
//
// # Repair-efficient rack-aware codes
//
// RS repair is spine-hungry: rebuilding one lost chunk fetches k chunks,
// most from remote racks, so every lost byte costs about k bytes of
// cross-rack traffic on the metered link. RedundancyLRC is the
// repair-efficient second code family: the same RS(k,m) global code
// spread across racks, plus one local parity chunk per rack — the XOR
// of that rack's global chunks, placed on a server of its own
// (Config.Racks > 1 and PlacementSpread required; ECSpec's
// ValidateClusterLocal checks the geometry, including the extra server
// per rack the parity needs). The family changes what failures cost:
//
//   - A single-server loss repairs entirely inside its rack: the lost
//     chunk is the XOR of the rack's survivors plus its local parity,
//     so the rebuild ships zero spine bytes and bypasses the repair
//     pacer's token lane entirely (Result.LocalRepairStripes). Degraded
//     reads steered to a rack-mate reconstruct the same way
//     (Result.LocalDegradedReads).
//   - Multi-loss repair falls back to the global code but aggregates:
//     each remote rack combines its survivors into one GF(2^8) partial
//     sum locally and ships a single chunk-sized aggregate per batch,
//     so the spine carries one chunk per remote rack instead of k raw
//     chunks (Result.AggregatedRepairStripes).
//   - Durability is equal or better than the underlying RS(k,m): any m
//     global losses stay recoverable, and additionally a rack whose
//     only casualty is one global chunk repairs locally, which
//     Result.UnrecoverableStripes credits.
//
// The honest cost is write amplification: updating a chunk also updates
// the local parity of every rack the write touches, so a logical write
// fans out to more sub-writes than RS's 1+m. The code-family comparison
// at fixed durability on a scarce spine is Experiment("figra", ...),
// also reachable as rackbench -exp figra (and -redundancy lrc4,2); see
// examples/lrc.
//
// # Flight recorder
//
// The rack carries an always-available, observer-only flight recorder:
// request tracing, time-series metrics, and p99 attribution across the
// whole datapath. Config.Trace turns on a sim-time span tracer that
// records where each request's latency went — client queueing, ToR
// lookup and handoff, spine wait vs transfer, device service, GC
// blocking, degraded-read reconstruction, retransmits — plus
// control-plane instants (scenario fail/revive, pacer rate changes,
// repair enqueue/re-integration) and GC bursts. Retention combines head
// sampling (one request in TraceOptions.SampleEvery by key hash) with a
// tail reservoir that always keeps the slowest reads, so the p99 story
// survives sampling. Config.MetricsInterval arms a periodic sampler
// (spine utilization, repair rate and backlog, windowed read p50/p99,
// GC and degraded-read activity, per-rack request rates) driven by the
// engine's observer tick.
//
//	cfg := rackblox.DefaultConfig()
//	cfg.Trace = rackblox.TraceOptions{Enabled: true, SampleEvery: 8}
//	cfg.MetricsInterval = 1_000_000 // sample every 1ms of virtual time
//	res, _ := rackblox.Run(cfg)
//	res.Trace.WriteChromeTrace(f)   // load f in ui.perfetto.dev
//	res.Timelines.WriteCSV(g)       // plot the run's time series
//	for _, s := range res.TailAttribution {
//		fmt.Printf("%-16s %5.1f%%\n", s.Phase, 100*s.Fraction)
//	}
//
// Result.Trace holds the retained spans (export with WriteChromeTrace,
// loadable in Perfetto or chrome://tracing), Result.Timelines the
// sampled series (export with WriteCSV), and Result.TailAttribution the
// per-phase share of the slowest 1% of reads' latency — the direct
// answer to "why is p99 high", with fractions summing to ~1 because
// each request's phases tile its end-to-end latency. Both knobs are
// observer-only by construction: the tracer and sampler never schedule
// events and never draw randomness, so an instrumented run is
// byte-identical to a plain one in everything but the recorder's own
// output (asserted under test). Result.EventsByHandler breaks the
// engine's processed-event count down per handler class in every run,
// instrumented or not. See examples/tracing, or rackbench's -trace,
// -metrics, and -trace-sample flags.
//
// # Simulator invariants
//
// The simulation core is sharded: sim.ShardGroup owns one engine per
// rack plus a coordinator shard (shard 0, the spine and cluster
// driver), and can run the shards on parallel goroutines under
// conservative-lookahead synchronization. Each window extends to the
// earliest pending event time plus the cross-shard lookahead (the spine
// propagation delay) minus one tick, so shards never need to see each
// other's state mid-window; cross-shard events travel through per-edge
// mailboxes and are delivered in canonical (time, source shard, send
// sequence) order, which makes the parallel run byte-identical to the
// sequential one — RunSequential is kept as the differential oracle,
// and a fuzzer plus the figure replay suite compare the two modes event
// trace for event trace. Handlers obey a shard-ownership discipline: an
// executing event touches only its own shard's state, and cross-shard
// work carries only by-value data through ShardGroup.Send, whose
// lookahead contract (deliveries at least one lookahead in the future)
// is enforced at the call site.
//
// Every measurement above rests on five invariants that the cmd/rackvet
// analysis suite (internal/analysis) machine-checks, so they hold by
// construction rather than by review:
//
//   - simdeterminism: simulation packages (internal/sim, core, ec,
//     switchsim, experiments) contain no order-sensitive map iteration —
//     a map range whose body schedules events, writes exported result
//     state, records trace/stats samples, or draws randomness must
//     iterate sorted keys or carry a `//rackvet:commutative <rationale>`
//     directive asserting the body commutes — and no global math/rand
//     use or goroutine spawns (the shard runner's worker pool in
//     internal/sim's shardrun.go is the one sanctioned exception).
//     Same-seed runs replay byte-identically, parallel or sequential.
//   - simtime: no wall-clock reads (time.Now/Since/Until/Sleep/timers)
//     anywhere simulation logic runs; the only clock is virtual
//     sim.Time. _test.go files, cmd/, and examples/ are exempt, and
//     internal/walltime is the single audited boundary for host-time
//     measurement (benchmark soak timing).
//   - eventlabel: every event scheduled in internal packages goes
//     through Engine.AtNamed/AfterNamed with a stable, non-empty label,
//     so Result.EventsByHandler accounts for every processed event; a
//     deliberate exception carries `//rackvet:unlabeled <rationale>`.
//   - observerpure: internal/trace and internal/stats never schedule
//     events, call into simulation components, draw from sim.RNG, or
//     write simulation-state fields — the static side of the
//     "instrumented runs are byte-identical" guarantee.
//   - goroutinediscipline: `go` statements appear in exactly one file
//     of the internal tree — internal/sim's shardrun.go, the shard
//     worker pool whose window barrier keeps the concurrency
//     unobservable. There is deliberately no directive escape hatch:
//     new concurrency must go through the shard runner or move the
//     carve-out in review.
//
// Run the suite standalone (CI does both of these on every push):
//
//	go run ./cmd/rackvet ./...
//
// or as a go vet tool, which caches per-package results incrementally:
//
//	go build -o rackvet ./cmd/rackvet
//	go vet -vettool=$(pwd)/rackvet ./...
//
// Each directive escape hatch is a reviewed assertion, not a
// suppression: the rationale text after the directive name is required
// — the analyzers report a bare `//rackvet:commutative` or
// `//rackvet:unlabeled` with no rationale as a finding — and its
// content is audited in review.
//
// Quick start:
//
//	cfg := rackblox.DefaultConfig()
//	cfg.System = rackblox.SystemRackBlox
//	res, err := rackblox.Run(cfg)
//	if err != nil { ... }
//	fmt.Println("P99.9 read:", res.Recorder.Reads().P999())
//
// The four systems of the paper's evaluation are available as
// SystemVDC, SystemRackBloxSoftware, SystemRackBloxCoordIO and
// SystemRackBlox; every table and figure of §4 can be regenerated with
// the Experiment function or the cmd/rackbench binary.
package rackblox

import (
	"rackblox/internal/core"
	"rackblox/internal/ec"
	"rackblox/internal/experiments"
	"rackblox/internal/flash"
	"rackblox/internal/netsim"
	"rackblox/internal/sched"
	"rackblox/internal/stats"
	"rackblox/internal/trace"
	"rackblox/internal/wear"
	"rackblox/internal/workload"
)

// Config parameterizes one rack experiment; see DefaultConfig for the
// paper's setup.
type Config = core.Config

// WorkloadSpec selects the client workload (YCSB mixes or the Table 2
// BenchBase applications).
type WorkloadSpec = core.WorkloadSpec

// Result is the outcome of one run: latency recorder plus event counters.
type Result = core.Result

// System identifies one of the four evaluated designs.
type System = core.System

// The evaluated systems (§4.1).
const (
	SystemVDC              = core.VDC
	SystemRackBloxSoftware = core.RackBloxSoftware
	SystemRackBloxCoordIO  = core.RackBloxCoordIO
	SystemRackBlox         = core.RackBlox
)

// Sample is one completed request with its latency breakdown.
type Sample = stats.Sample

// Recorder accumulates samples and computes the evaluation's statistics.
type Recorder = stats.Recorder

// Dist is a latency distribution with percentile accessors.
type Dist = stats.Dist

// DefaultConfig returns the paper's default experimental setup, scaled to
// simulation: four storage servers, four hardware-isolated vSSD pairs on
// P-SSD-class devices, Kyber scheduling, 35%/25% GC thresholds, and YCSB
// at a 50/50 read/write mix.
func DefaultConfig() Config { return core.DefaultConfig() }

// Systems lists the four designs in evaluation order.
func Systems() []System { return core.Systems() }

// Run executes one configured experiment end to end and returns its
// latency distributions and event counters.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// RedundancySpec selects the rack's redundancy backend (Config.Redundancy).
type RedundancySpec = core.RedundancySpec

// RedundancyReplication is the paper's 2-way Hermes replication (default).
func RedundancyReplication() RedundancySpec { return core.Replication() }

// RedundancyEC stripes every volume RS(k,m) over k+m servers: reads of a
// failed or collecting chunk holder reconstruct from any k survivors.
func RedundancyEC(k, m int) RedundancySpec { return core.ErasureCode(k, m) }

// RedundancyLRC is the repair-efficient rack-aware family: RS(k,m)
// global chunks spread across racks plus one local parity chunk per
// rack, so a single-server loss repairs inside its rack with zero spine
// bytes and multi-loss repair ships one aggregated chunk per remote
// rack. Requires Config.Racks > 1 and PlacementSpread.
func RedundancyLRC(k, m int) RedundancySpec { return core.LocalParityCode(k, m) }

// PlacementMode selects how erasure-coded stripes map onto the cluster's
// rack fault domains (Config.Placement) when Config.Racks > 1.
type PlacementMode = core.PlacementMode

// Placement modes: compact confines each stripe group to one rack;
// spread caps every rack at m chunks per stripe so a whole-rack failure
// stays recoverable.
const (
	PlacementCompact = core.PlacementCompact
	PlacementSpread  = core.PlacementSpread
)

// FailureSpecError is the typed validation error for failure-injection
// configuration: malformed Config.Scenario timelines (out-of-range
// indices, double crashes, revive-before-fail, same-instant fault-
// domain double-booking), invalid legacy flat fields, mixing a Scenario
// with any deprecated flat field, and contradictory RepairSLO settings.
type FailureSpecError = core.FailureSpecError

// RepairSLO configures the latency-SLO-aware repair rate controller
// (Config.RepairSLO): the foreground read p99 target the pacer defends,
// the min/max repair admission rate bounds, and the sensor window and
// tick interval. The zero value disables pacing.
type RepairSLO = core.RepairSLO

// RatePoint is one entry of Result.RepairRateTimeline: the repair
// admission rate the AIMD controller set at a virtual-time instant.
type RatePoint = core.RatePoint

// TraceOptions enables and tunes the flight recorder (Config.Trace):
// head-sampling rate and tail-reservoir size. The zero value disables
// tracing.
type TraceOptions = trace.Options

// Trace is a traced run's collected output (Result.Trace): retained
// request/repair spans, control-plane instants, and GC bursts. Export
// with WriteChromeTrace for Perfetto.
type Trace = trace.Trace

// TraceSpan is one timed operation in a Trace: a request root with its
// phase partition and nested children, or a background repair batch.
type TraceSpan = trace.Span

// PhaseShare is one row of Result.TailAttribution: the fraction of the
// slowest reads' total latency spent in one datapath phase.
type PhaseShare = trace.PhaseShare

// TimeSeries is the periodic metrics sampler's output
// (Result.Timelines); export with WriteCSV or re-load with
// stats.ParseCSV.
type TimeSeries = stats.TimeSeries

// Event is one typed entry of a scenario timeline (Config.Scenario): a
// fault or recovery action applied to a server or rack index at its own
// virtual-time instant.
type Event = core.Event

// EventKind discriminates the scenario event union.
type EventKind = core.EventKind

// The scenario event kinds; build events with the constructors below.
const (
	EventFailServer   = core.EventFailServer
	EventFailRack     = core.EventFailRack
	EventFailToR      = core.EventFailToR
	EventReviveServer = core.EventReviveServer
	EventReviveToR    = core.EventReviveToR
)

// FailServer schedules a crash of global server idx at virtual time at
// (nanoseconds).
func FailServer(idx int, at int64) Event { return core.FailServer(idx, at) }

// FailRack schedules a whole-rack crash of rack idx at time at.
func FailRack(idx int, at int64) Event { return core.FailRack(idx, at) }

// FailToR schedules a ToR-switch failure of rack idx at time at: the
// rack's servers stay alive but unreachable, no data is lost.
func FailToR(idx int, at int64) Event { return core.FailToR(idx, at) }

// ReviveServer schedules the revival of crashed server idx at time at:
// the box returns blank, catches up via the metered reconstructor, and
// is re-registered under its original id; replicated instances re-pair
// with their survivors.
func ReviveServer(idx int, at int64) Event { return core.ReviveServer(idx, at) }

// ReviveToR schedules the revival of rack idx's failed ToR at time at:
// blank SRAM, control-plane table replay from survivors.
func ReviveToR(idx int, at int64) Event { return core.ReviveToR(idx, at) }

// ECSpec is the RS(k,m) parameterization of the erasure-coding subsystem.
type ECSpec = ec.Spec

// ECCodec encodes and reconstructs RS(k,m) stripes over GF(2^8).
type ECCodec = ec.Codec

// NewECCodec builds a systematic RS codec for the spec.
func NewECCodec(spec ECSpec) (*ECCodec, error) { return ec.NewCodec(spec) }

// ErrStripeUnrecoverable reports more than m erasures in one stripe.
var ErrStripeUnrecoverable = ec.ErrStripeUnrecoverable

// Device profiles of §4.5.3, fastest to slowest.
func DeviceOptane() flash.Profile  { return flash.ProfileOptane() }
func DeviceIntelDC() flash.Profile { return flash.ProfileIntelDC() }
func DevicePSSD() flash.Profile    { return flash.ProfilePSSD() }

// Network profiles of §4.5.3, fastest to slowest.
func NetworkFast() netsim.Profile   { return netsim.ProfileFast() }
func NetworkMedium() netsim.Profile { return netsim.ProfileMedium() }
func NetworkSlow() netsim.Profile   { return netsim.ProfileSlow() }

// Storage scheduler policies of §4.5.1, plus CFQ (the paper's
// reference [17]).
const (
	SchedFIFO     = sched.FIFO
	SchedDeadline = sched.Deadline
	SchedKyber    = sched.Kyber
	SchedCFQ      = sched.CFQ
)

// Workloads lists the five BenchBase applications of Table 2.
func Workloads() []string { return workload.Names() }

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return experiments.All() }

// ExperimentTable is a printable experiment result.
type ExperimentTable = experiments.Table

// Experiment regenerates one of the paper's tables or figures by id
// (e.g. "fig9", "table2"). scale in (0,1] shrinks the measured window;
// use 1.0 to reproduce at full length.
func Experiment(id string, scale float64) ([]*ExperimentTable, error) {
	return experiments.ByID(id, experiments.Scale(scale))
}

// WearConfig parameterizes the rack-scale wear-leveling simulation.
type WearConfig = wear.Config

// WearRack is the wear-simulation state.
type WearRack = wear.Rack

// DefaultWearConfig reproduces the Fig. 22/23 setup: 32 servers x 16 SSDs
// x 4 vSSDs, 12-day local and 8-week global swap periods.
func DefaultWearConfig() WearConfig { return wear.DefaultConfig() }

// NewWearRack builds a wear-leveling simulation.
func NewWearRack(cfg WearConfig) (*WearRack, error) { return wear.New(cfg) }
