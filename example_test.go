package rackblox_test

import (
	"fmt"
	"time"

	"rackblox"
)

// Example runs the default RackBlox configuration and reports whether the
// ToR switch coordinated any garbage collection.
func Example() {
	cfg := rackblox.DefaultConfig()
	cfg.System = rackblox.SystemRackBlox
	cfg.Duration = (400 * time.Millisecond).Nanoseconds()

	res, err := rackblox.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Recorder.Len() > 0)
	fmt.Println("switch redirected reads:", res.Switch.Redirected > 0)
	// Output:
	// completed: true
	// switch redirected reads: true
}

// ExampleRun_comparison contrasts the VDC baseline with RackBlox on the
// same workload — the paper's core comparison.
func ExampleRun_comparison() {
	var p999 [2]int64
	for i, sys := range []rackblox.System{rackblox.SystemVDC, rackblox.SystemRackBlox} {
		cfg := rackblox.DefaultConfig()
		cfg.System = sys
		res, err := rackblox.Run(cfg)
		if err != nil {
			panic(err)
		}
		p999[i] = res.Recorder.Reads().P999()
	}
	fmt.Println("RackBlox beats VDC on P99.9 reads:", p999[1] < p999[0])
	// Output:
	// RackBlox beats VDC on P99.9 reads: true
}

// ExampleNewWearRack simulates a year of rack-scale wear leveling.
func ExampleNewWearRack() {
	cfg := rackblox.DefaultWearConfig()
	rack, err := rackblox.NewWearRack(cfg)
	if err != nil {
		panic(err)
	}
	rack.RunWeeks(52)
	fmt.Println("imbalance bounded:", rack.RackImbalance() < 1.3)
	// Output:
	// imbalance bounded: true
}

// ExampleExperiment regenerates one of the paper's tables.
func ExampleExperiment() {
	tables, err := rackblox.Experiment("table2", 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("tables:", len(tables))
	fmt.Println("rows:", len(tables[0].Rows))
	// Output:
	// tables: 1
	// rows: 6
}
