module rackblox

go 1.22
